#include "core/wal.h"

#include <cassert>
#include <cstring>

namespace hyperloop::core {

ReplicatedWal::ReplicatedWal(ReplicationGroup& group, RegionLayout layout)
    : group_(group), layout_(layout) {
  assert(layout_.valid());
  assert(layout_.region_size <= group.region_size());
}

uint32_t ReplicatedWal::crc32_update(uint32_t crc, const void* data,
                                     size_t len) {
  // CRC-32 (reflected 0xEDB88320), table-free bitwise variant; the log
  // payloads are small enough that simplicity beats a table here.
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc;
}

uint32_t ReplicatedWal::stage_record(const std::vector<Entry>& entries,
                                     uint64_t lsn, uint64_t voff) {
  static constexpr uint8_t kZeroPad[8] = {};

  // Serialize body pieces straight into the ring while folding them into
  // the checksum; the header (which carries the final crc) lands last.
  uint32_t crc = 0xFFFFFFFFu;
  uint64_t p = voff + sizeof(RecordHeader);
  for (const Entry& e : entries) {
    EntryHeader eh;
    eh.db_offset = e.db_offset;
    eh.len = static_cast<uint32_t>(e.data.size());
    group_.client_store(log_phys(p), &eh, sizeof(eh));
    crc = crc32_update(crc, &eh, sizeof(eh));
    p += sizeof(eh);
    if (!e.data.empty()) {
      group_.client_store(log_phys(p), e.data.data(),
                          static_cast<uint32_t>(e.data.size()));
      crc = crc32_update(crc, e.data.data(), e.data.size());
      p += e.data.size();
    }
    const uint32_t pad =
        static_cast<uint32_t>((8 - (e.data.size() & 7)) & 7);
    if (pad > 0) {
      group_.client_store(log_phys(p), kZeroPad, pad);
      crc = crc32_update(crc, kZeroPad, pad);
      p += pad;
    }
  }

  RecordHeader hdr;
  hdr.magic = kRecordMagic;
  hdr.num_entries = static_cast<uint32_t>(entries.size());
  hdr.lsn = lsn;
  hdr.total_len = static_cast<uint32_t>(p - voff);
  hdr.crc = ~crc;
  group_.client_store(log_phys(voff), &hdr, sizeof(hdr));
  return hdr.total_len;
}

bool ReplicatedWal::append(const std::vector<Entry>& entries,
                           AppendDone done) {
  const uint64_t lsn = next_lsn_;
  uint64_t rec_len = sizeof(RecordHeader);
  for (const Entry& e : entries) {
    rec_len += sizeof(EntryHeader) + ((e.data.size() + 7) & ~size_t{7});
  }
  assert(rec_len <= layout_.log_size / 2 && "record too large for log");

  // Never straddle the ring wrap: pad with a wrap marker if needed.
  const uint64_t room_to_wrap = layout_.log_size - (tail_ % layout_.log_size);
  uint64_t wrap_pad = 0;
  if (rec_len > room_to_wrap) wrap_pad = room_to_wrap;

  if (rec_len + wrap_pad > free_bytes()) {
    ++stats_.append_failures;
    return false;
  }
  ++next_lsn_;

  if (wrap_pad > 0) {
    RecordHeader wrap;
    wrap.magic = kWrapMagic;
    wrap.total_len = static_cast<uint32_t>(wrap_pad);
    group_.client_store(log_phys(tail_), &wrap, sizeof(wrap));
    // Replicate at least the marker header (the rest of the pad is junk
    // that readers skip via total_len).
    group_.gwrite(log_phys(tail_), sizeof(wrap), /*flush=*/true, [] {});
    tail_ += wrap_pad;
  }

  const uint64_t rec_voff = tail_;
  const uint32_t staged = stage_record(entries, lsn, rec_voff);
  assert(staged == rec_len);
  (void)staged;
  tail_ += rec_len;
  ++stats_.records_appended;
  stats_.bytes_appended += rec_len;

  // 1) the record body, 2) the tail pointer. Both flushed; same-primitive
  // ordering guarantees the tail never becomes durable before the record.
  group_.gwrite(log_phys(rec_voff), static_cast<uint32_t>(rec_len),
                /*flush=*/true, [] {});
  write_pointer(RegionLayout::kTailOffset, tail_,
                [lsn, done = std::move(done)]() mutable {
                  if (done) done(lsn);
                });
  return true;
}

void ReplicatedWal::write_pointer(uint64_t ctrl_offset, uint64_t value,
                                  sim::SmallFn<void(), kDoneCap> done) {
  group_.client_store(RegionLayout::kControlBase + ctrl_offset, &value, 8);
  group_.gwrite(RegionLayout::kControlBase + ctrl_offset, 8, /*flush=*/true,
                std::move(done));
}

uint32_t ReplicatedWal::acquire_exec_op() {
  if (exec_free_.empty()) {
    exec_ops_.emplace_back();
    return static_cast<uint32_t>(exec_ops_.size() - 1);
  }
  const uint32_t idx = exec_free_.back();
  exec_free_.pop_back();
  return idx;
}

void ReplicatedWal::finish_exec(uint32_t idx) {
  ExecOp& op = exec_ops_[idx];
  ++stats_.records_executed;
  const uint64_t new_head = op.rec_voff + op.total_len;
  Done done = std::move(op.done);
  op.live = false;
  exec_free_.push_back(idx);
  write_pointer(RegionLayout::kHeadOffset, new_head,
                [d = std::move(done)]() mutable {
                  if (d) d();
                });
}

bool ReplicatedWal::execute_and_advance(Done done) {
  // Skip wrap markers.
  while (head_ != tail_) {
    RecordHeader hdr;
    group_.client_load(log_phys(head_), &hdr, sizeof(hdr));
    if (hdr.magic == kWrapMagic) {
      head_ += hdr.total_len;
      continue;
    }
    assert(hdr.magic == kRecordMagic && "corrupt log record");
    break;
  }
  if (head_ == tail_) return false;

  RecordHeader hdr;
  const uint64_t rec_voff = head_;
  group_.client_load(log_phys(rec_voff), &hdr, sizeof(hdr));

  // Advance the in-memory head eagerly so a concurrent caller processes
  // the *next* record. FIFO gMEMCPY/gWRITE acks guarantee the durable
  // head pointer writes still land in record order.
  head_ = rec_voff + hdr.total_len;

  // Claim a pooled op slot; one gMEMCPY+gFLUSH per entry decrements it,
  // and the last ack durably advances the head (log truncation).
  const uint32_t idx = acquire_exec_op();
  ExecOp& op = exec_ops_[idx];
  assert(!op.live);
  op.rec_voff = rec_voff;
  op.total_len = hdr.total_len;
  op.remaining = hdr.num_entries;
  op.live = true;
  op.done = std::move(done);

  if (hdr.num_entries == 0) {
    finish_exec(idx);
    return true;
  }

  uint64_t p = rec_voff + sizeof(RecordHeader);
  for (uint32_t i = 0; i < hdr.num_entries; ++i) {
    EntryHeader eh;
    group_.client_load(log_phys(p), &eh, sizeof(eh));
    const uint64_t data_voff = p + sizeof(EntryHeader);
    group_.gmemcpy(log_phys(data_voff), layout_.db_base() + eh.db_offset,
                   eh.len, /*flush=*/true, [this, idx] {
                     if (--exec_ops_[idx].remaining == 0) finish_exec(idx);
                   });
    p = data_voff + ((eh.len + 7) & ~uint64_t{7});
  }
  return true;
}

void ReplicatedWal::reload_pointers() {
  group_.client_load(RegionLayout::kControlBase + RegionLayout::kHeadOffset,
                     &head_, 8);
  group_.client_load(RegionLayout::kControlBase + RegionLayout::kTailOffset,
                     &tail_, 8);
}

}  // namespace hyperloop::core
