#include "core/chain_manager.h"

#include <cassert>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/buf_pool.h"

namespace hyperloop::core {
namespace {

// Heartbeat wire format: [epoch u64][replica index u32].
struct HbMsg {
  uint64_t epoch;
  uint32_t replica;
};

std::vector<uint8_t> encode(const HbMsg& m) {
  std::vector<uint8_t> v(sizeof(m));
  std::memcpy(v.data(), &m, sizeof(m));
  return v;
}

HbMsg decode(const std::vector<uint8_t>& v) {
  HbMsg m{};
  assert(v.size() >= sizeof(m));
  std::memcpy(&m, v.data(), sizeof(m));
  return m;
}

}  // namespace

ChainManager::ChainManager(Server& client, std::vector<ReplicaInfo> replicas,
                           uint64_t region_size, Config cfg)
    : client_(client),
      replicas_(std::move(replicas)),
      region_size_(region_size),
      cfg_(cfg) {
  const size_t n = replicas_.size();
  alive_.assign(n, true);
  detected_dead_.assign(n, false);
  missed_.assign(n, 0);
  echoed_.assign(n, true);

  client_pid_ = client_.sched().create_process("chain-mgr");
  // Echo port on the client.
  client_.tcp().listen(
      cfg_.port_base, client_pid_,
      [this](rdma::NicId, uint16_t, std::vector<uint8_t> bytes) {
        const HbMsg m = decode(bytes);
        BufPool::release(std::move(bytes));
        if (m.replica < echoed_.size()) echoed_[m.replica] = true;
      });

  for (size_t i = 0; i < n; ++i) {
    Server* s = replicas_[i].server;
    replica_pids_.push_back(
        s->sched().create_process(s->name() + "-hb"));
    s->tcp().listen(
        cfg_.port_base, replica_pids_[i],
        [this, i, s](rdma::NicId src, uint16_t, std::vector<uint8_t> bytes) {
          if (!alive_[i]) {  // dead replicas do not echo
            BufPool::release(std::move(bytes));
            return;
          }
          s->sched().submit(replica_pids_[i], cfg_.hb_cpu,
                            [this, i, s, src, b = std::move(bytes)]() mutable {
                              if (!alive_[i]) {
                                BufPool::release(std::move(b));
                                return;
                              }
                              s->tcp().send(replica_pids_[i], src,
                                            cfg_.port_base, std::move(b));
                            });
        });
  }
}

void ChainManager::start() {
  if (started_) return;
  started_ = true;
  heartbeat_tick();
}

void ChainManager::heartbeat_tick() {
  // Evaluate last round's echoes.
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (detected_dead_[i]) continue;
    if (echoed_[i]) {
      missed_[i] = 0;
    } else if (++missed_[i] >= cfg_.missed_threshold) {
      detected_dead_[i] = true;
      ++failures_;
      paused_ = true;  // writes stop until the chain is repaired
      if (on_failure_) on_failure_(i);
    }
    echoed_[i] = false;
  }
  // Send the next round as one coalesced sweep: a single scheduler
  // wakeup pushes every replica's heartbeat (sendmmsg-style), so the
  // steady-state event-loop load is one event per period, not one per
  // replica.
  std::vector<TcpStack::Dgram> sweep;
  sweep.reserve(replicas_.size());
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (detected_dead_[i]) continue;
    sweep.push_back({replicas_[i].server->nic().id(), cfg_.port_base,
                     encode(HbMsg{epoch_, static_cast<uint32_t>(i)})});
  }
  client_.tcp().send_many(client_pid_, std::move(sweep));
  client_.loop().schedule_after(cfg_.heartbeat_interval,
                                [this] { heartbeat_tick(); });
}

void ChainManager::kill_replica(size_t i) {
  assert(i < replicas_.size());
  alive_[i] = false;
  // Power-fail semantics: volatile writes are gone when it comes back.
  replicas_[i].server->nvm().crash();
}

size_t ChainManager::healthy_neighbor(size_t i) const {
  for (size_t d = 1; d < replicas_.size(); ++d) {
    const size_t j = (i + d) % replicas_.size();
    if (alive_[j] && !detected_dead_[j]) return j;
  }
  assert(false && "no healthy replica to recover from");
  return i;
}

void ChainManager::revive_replica(size_t i) {
  assert(i < replicas_.size());
  assert(!alive_[i]);
  const size_t src = healthy_neighbor(i);

  // Catch-up: bulk copy the region image from the healthy neighbor. This
  // is a control-path transfer; we model its duration by region size over
  // the configured copy bandwidth.
  const auto copy_time = static_cast<sim::Duration>(
      static_cast<double>(region_size_) / cfg_.copy_bandwidth_bps * 1e9);
  client_.loop().schedule_after(copy_time, [this, i, src] {
    std::vector<uint8_t> image(region_size_);
    replicas_[src].server->mem().read(replicas_[src].region_base,
                                      image.data(), region_size_);
    replicas_[i].server->mem().write(replicas_[i].region_base, image.data(),
                                     region_size_);
    replicas_[i].server->nvm().persist(replicas_[i].region_base,
                                       region_size_);
    alive_[i] = true;
    detected_dead_[i] = false;
    missed_[i] = 0;
    echoed_[i] = true;
    ++epoch_;
    ++recoveries_;
    // Chain repaired: resume writes if every member is healthy.
    bool all = true;
    for (size_t k = 0; k < replicas_.size(); ++k) {
      all = all && alive_[k] && !detected_dead_[k];
    }
    if (all) paused_ = false;
    if (on_recovered_) on_recovered_(i);
  });
}

ShardedChainManager::ShardedChainManager(
    Server& client,
    std::vector<std::vector<ChainManager::ReplicaInfo>> shard_replicas,
    uint64_t region_size, ChainManager::Config cfg) {
  mgrs_.reserve(shard_replicas.size());
  for (size_t s = 0; s < shard_replicas.size(); ++s) {
    ChainManager::Config shard_cfg = cfg;
    shard_cfg.port_base = static_cast<uint16_t>(cfg.port_base + s);
    mgrs_.push_back(std::make_unique<ChainManager>(
        client, std::move(shard_replicas[s]), region_size, shard_cfg));
  }
}

void ShardedChainManager::start() {
  for (auto& m : mgrs_) m->start();
}

void ShardedChainManager::set_on_shard_failure(
    std::function<void(size_t, size_t)> fn) {
  for (size_t s = 0; s < mgrs_.size(); ++s) {
    mgrs_[s]->set_on_failure([fn, s](size_t replica) { fn(s, replica); });
  }
}

void ShardedChainManager::set_on_shard_recovered(
    std::function<void(size_t, size_t)> fn) {
  for (size_t s = 0; s < mgrs_.size(); ++s) {
    mgrs_[s]->set_on_recovered([fn, s](size_t replica) { fn(s, replica); });
  }
}

uint64_t ShardedChainManager::failures_detected() const {
  uint64_t n = 0;
  for (const auto& m : mgrs_) n += m->failures_detected();
  return n;
}

uint64_t ShardedChainManager::recoveries() const {
  uint64_t n = 0;
  for (const auto& m : mgrs_) n += m->recoveries();
  return n;
}

}  // namespace hyperloop::core
