#include "core/two_phase.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

namespace hyperloop::core {
namespace {

// Staging block layout: [count u32][pad u32] then per write
// [db_offset u64][len u32][pad u32][data, padded to 8].
std::vector<uint8_t> encode_staging(
    const std::vector<const TwoPhaseCoordinator::Write*>& writes) {
  size_t total = 8;
  for (const auto* w : writes) total += 16 + ((w->data.size() + 7) & ~7ull);
  std::vector<uint8_t> out(total, 0);
  const uint32_t count = static_cast<uint32_t>(writes.size());
  std::memcpy(out.data(), &count, 4);
  uint8_t* p = out.data() + 8;
  for (const auto* w : writes) {
    std::memcpy(p, &w->db_offset, 8);
    const uint32_t len = static_cast<uint32_t>(w->data.size());
    std::memcpy(p + 8, &len, 4);
    std::memcpy(p + 16, w->data.data(), w->data.size());
    p += 16 + ((w->data.size() + 7) & ~7ull);
  }
  return out;
}

std::vector<uint8_t> encode_status(uint64_t txn, uint64_t state) {
  std::vector<uint8_t> out(16);
  std::memcpy(out.data(), &txn, 8);
  std::memcpy(out.data() + 8, &state, 8);
  return out;
}

}  // namespace

struct TwoPhaseCoordinator::TxnCtx {
  uint64_t id = 0;
  std::vector<Write> writes;
  std::vector<size_t> parts;  // involved partitions, ascending
  std::vector<std::pair<size_t, uint32_t>> lock_order;
  size_t execs_done = 0;
  TxnDone done;
};

TwoPhaseCoordinator::TwoPhaseCoordinator(sim::EventLoop& loop,
                                         std::vector<PartitionCtx> partitions,
                                         Config cfg)
    : loop_(loop), parts_(std::move(partitions)), cfg_(cfg) {
  for ([[maybe_unused]] const auto& p : parts_) {
    assert(p.group != nullptr && p.wal != nullptr && p.locks != nullptr);
    assert(app_data_base() < p.layout.db_size());
  }
}

void TwoPhaseCoordinator::execute(std::vector<Write> writes, TxnDone done) {
  auto t = std::make_shared<TxnCtx>();
  t->id = next_txn_++;
  t->writes = std::move(writes);
  t->done = std::move(done);

  std::set<size_t> parts;
  std::set<std::pair<size_t, uint32_t>> locks;
  for (const Write& w : t->writes) {
    assert(w.partition < parts_.size());
    assert(w.db_offset >= app_data_base() && "write below app_data_base()");
    parts.insert(w.partition);
    locks.insert({w.partition, w.lock_id});
  }
  t->parts.assign(parts.begin(), parts.end());
  t->lock_order.assign(locks.begin(), locks.end());
  acquire_locks(std::move(t), 0);
}

void TwoPhaseCoordinator::acquire_locks(std::shared_ptr<TxnCtx> t,
                                        size_t idx) {
  if (idx == t->lock_order.size()) {
    prepare_step(std::move(t), 0);
    return;
  }
  const auto [part, lock] = t->lock_order[idx];
  const uint64_t owner = t->id;
  parts_[part].locks->wr_lock(
      lock, owner, [this, t = std::move(t), idx](bool ok) mutable {
        if (!ok) {
          // Release what we hold (in reverse) and abort; nothing was
          // logged.
          abort_release(std::move(t), idx);
          return;
        }
        acquire_locks(std::move(t), idx + 1);
      });
}

void TwoPhaseCoordinator::abort_release(std::shared_ptr<TxnCtx> t, size_t i) {
  if (i == 0) {
    finish(std::move(t), false);
    return;
  }
  const auto [part, lock] = t->lock_order[i - 1];
  const uint64_t owner = t->id;
  parts_[part].locks->wr_unlock(
      lock, owner, [this, t = std::move(t), i]() mutable {
        abort_release(std::move(t), i - 1);
      });
}

// Prepare partitions one at a time (simple and restartable under log
// backpressure); each step retries itself until its append is accepted.
void TwoPhaseCoordinator::prepare_step(std::shared_ptr<TxnCtx> t,
                                       size_t idx) {
  if (idx == t->parts.size()) {
    commit_step(std::move(t), 0);
    return;
  }
  const size_t part = t->parts[idx];
  std::vector<const Write*> mine;
  for (const Write& w : t->writes) {
    if (w.partition == part) mine.push_back(&w);
  }
  std::vector<ReplicatedWal::Entry> entries;
  entries.push_back({staging_offset(t->id), encode_staging(mine)});
  entries.push_back({status_offset(t->id), encode_status(t->id, kPrepared)});
  const bool ok = parts_[part].wal->append(
      entries, [this, t, idx](uint64_t) mutable {
        prepare_step(std::move(t), idx + 1);
      });
  if (!ok) {
    loop_.schedule_after(sim::usec(200), [this, t = std::move(t), idx] {
      prepare_step(t, idx);
    });
  }
}

// Phase 2, per partition in order: commit-record append (the global
// commit point is the last partition's durable append), then two
// ExecuteAndAdvance calls per partition (this txn's prepare and commit
// records), then unlock everything.
void TwoPhaseCoordinator::commit_step(std::shared_ptr<TxnCtx> t,
                                      size_t idx) {
  if (idx == t->parts.size()) {
    run_execs(std::move(t));
    return;
  }
  const size_t part = t->parts[idx];
  std::vector<ReplicatedWal::Entry> entries;
  for (const Write& w : t->writes) {
    if (w.partition == part) entries.push_back({w.db_offset, w.data});
  }
  entries.push_back({status_offset(t->id), encode_status(t->id, kCommitted)});
  const bool ok = parts_[part].wal->append(
      entries, [this, t, idx](uint64_t) mutable {
        commit_step(std::move(t), idx + 1);
      });
  if (!ok) {
    loop_.schedule_after(sim::usec(200), [this, t = std::move(t), idx] {
      commit_step(t, idx);
    });
  }
}

void TwoPhaseCoordinator::run_execs(std::shared_ptr<TxnCtx> t) {
  for (size_t pi = 0; pi < t->parts.size(); ++pi) {
    const size_t part = t->parts[pi];
    for (int k = 0; k < 2; ++k) {
      // A concurrent transaction's ExecuteAndAdvance may already have
      // consumed our record (the log drains FIFO, globally balanced):
      // an empty log here means our records are applied or in flight.
      if (!parts_[part].wal->execute_and_advance(
              [this, t] { on_exec_done(t); })) {
        on_exec_done(t);
      }
    }
  }
}

void TwoPhaseCoordinator::on_exec_done(std::shared_ptr<TxnCtx> t) {
  if (++t->execs_done < 2 * t->parts.size()) return;
  commit_release(std::move(t), 0);
}

void TwoPhaseCoordinator::commit_release(std::shared_ptr<TxnCtx> t,
                                         size_t i) {
  if (i == t->lock_order.size()) {
    finish(std::move(t), true);
    return;
  }
  const auto [part, lock] = t->lock_order[i];
  const uint64_t owner = t->id;
  parts_[part].locks->wr_unlock(
      lock, owner, [this, t = std::move(t), i]() mutable {
        commit_release(std::move(t), i + 1);
      });
}

void TwoPhaseCoordinator::finish(std::shared_ptr<TxnCtx> t, bool ok) {
  if (ok) {
    ++committed_;
  } else {
    ++aborted_;
  }
  if (t->done) t->done(ok);
}

void TwoPhaseCoordinator::scan_status(
    size_t partition, std::vector<std::pair<uint64_t, uint64_t>>* out) const {
  const PartitionCtx& p = parts_[partition];
  for (uint32_t s = 0; s < cfg_.max_txn_slots; ++s) {
    uint64_t id = 0, state = 0;
    p.group->client_load(p.layout.db_base() + uint64_t{s} * 16, &id, 8);
    p.group->client_load(p.layout.db_base() + uint64_t{s} * 16 + 8, &state, 8);
    if (id != 0 && state != kNone) out->push_back({id, state});
  }
}

uint64_t TwoPhaseCoordinator::recover_partition(
    size_t partition, const std::vector<uint64_t>& committed_txns) {
  PartitionCtx& p = parts_[partition];
  uint64_t rolled_forward = 0;
  for (uint64_t txn : committed_txns) {
    uint64_t id = 0, state = 0;
    p.group->client_load(p.layout.db_base() + status_offset(txn), &id, 8);
    p.group->client_load(p.layout.db_base() + status_offset(txn) + 8, &state,
                         8);
    if (id != txn || state != kPrepared) continue;  // absent or already done

    // Roll forward: rebuild the final writes from the durable staging
    // block and commit them through the normal replicated path.
    const uint64_t stage = p.layout.db_base() + staging_offset(txn);
    uint32_t count = 0;
    p.group->client_load(stage, &count, 4);
    std::vector<ReplicatedWal::Entry> entries;
    uint64_t off = stage + 8;
    for (uint32_t i = 0; i < count; ++i) {
      uint64_t db_off = 0;
      uint32_t len = 0;
      p.group->client_load(off, &db_off, 8);
      p.group->client_load(off + 8, &len, 4);
      std::vector<uint8_t> data(len);
      p.group->client_load(off + 16, data.data(), len);
      entries.push_back({db_off, std::move(data)});
      off += 16 + ((len + 7) & ~7ull);
    }
    entries.push_back({status_offset(txn), encode_status(txn, kCommitted)});
    p.wal->append(entries, [wal = p.wal](uint64_t) {
      wal->execute_and_advance([] {});
    });
    ++rolled_forward;
  }
  return rolled_forward;
}

}  // namespace hyperloop::core
